/**
 * @file
 * Sweep-batch throughput harness: the fig10 grid (13 SPECint-like
 * workloads x 8 schemes x 2 widths x 3 seeds = 624 points) pushed
 * through SimulationRunner serially (--batch 1) and batched
 * (--batch K, default auto), best-of-N interleaved A/B, reported as
 * points per second and written to BENCH_batch.json.
 *
 * Two gates ride along:
 *  1. The rep-0 reports of both legs must be byte-identical — the
 *     batched path is an execution strategy, never a result change.
 *  2. SweepBatch::drain() — the batched replay loop — must make
 *     zero steady-state heap allocations. The first instructions of
 *     a lane legitimately grow pool-backed structures to their
 *     high-water marks (walker stack, event pool, consumer nodes),
 *     so the gate measures the allocation DELTA between two drains
 *     that differ only in measure length: one-time growth cancels
 *     and anything left is a per-instruction allocation in the
 *     replay loop.
 *
 * The acceptance number for the PR is the --quick speedup at the
 * default batch width (target >= 1.15x).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/batch/sweep_batch.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"

namespace
{

/** Global allocation counter fed by the operator-new overrides. */
std::atomic<uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace pri;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

const sim::Scheme kFig10Schemes[] = {
    sim::Scheme::Base,
    sim::Scheme::EarlyRelease,
    sim::Scheme::PriRefcountCkptcount,
    sim::Scheme::PriRefcountLazy,
    sim::Scheme::PriIdealCkptcount,
    sim::Scheme::PriIdealLazy,
    sim::Scheme::PriPlusEr,
    sim::Scheme::InfinitePregs,
};

/** The exact point list fig10_int_speedup prefetches. */
std::vector<sim::RunParams>
makeFig10Grid(const bench::Budget &budget)
{
    std::vector<sim::RunParams> grid;
    for (const auto &name : bench::intBenchmarks()) {
        for (unsigned width : {4u, 8u}) {
            for (auto scheme : kFig10Schemes) {
                for (uint64_t seed : bench::kSeeds) {
                    sim::RunParams p;
                    p.benchmark = name;
                    p.width = width;
                    p.scheme = scheme;
                    p.warmupInsts = budget.warmup;
                    p.measureInsts = budget.measure;
                    p.seed = seed;
                    grid.push_back(std::move(p));
                }
            }
        }
    }
    return grid;
}

/** One timed pass of the grid; returns points per second. */
double
timedLeg(const std::vector<sim::RunParams> &grid, unsigned jobs,
         unsigned lanes, std::vector<sim::RunResult> *results_out)
{
    sim::SimulationRunner runner(jobs);
    runner.setBatchLanes(lanes);
    const auto t0 = Clock::now();
    auto results = runner.run(grid);
    const double secs = secondsSince(t0);
    if (results_out != nullptr)
        *results_out = std::move(results);
    return secs > 0
        ? static_cast<double>(grid.size()) / secs
        : 0.0;
}

/** Total operator-new count across the drains of one batched grid:
 *  every (scheme, width) point of one (benchmark, seed) with the
 *  given measure length. */
uint64_t
drainAllocs(const bench::Budget &budget, uint64_t measure,
            unsigned lanes, size_t *lanes_out)
{
    std::vector<sim::RunParams> pts;
    for (unsigned width : {4u, 8u}) {
        for (auto scheme : kFig10Schemes) {
            sim::RunParams p;
            p.benchmark = bench::intBenchmarks().front();
            p.width = width;
            p.scheme = scheme;
            p.warmupInsts = budget.warmup;
            p.measureInsts = measure;
            p.seed = bench::kSeeds[0];
            pts.push_back(std::move(p));
        }
    }
    std::vector<size_t> pending(pts.size());
    for (size_t i = 0; i < pending.size(); ++i)
        pending[i] = i;
    const auto groups = sim::formBatches(pts, pending, lanes);

    uint64_t allocs = 0;
    size_t covered = 0;
    for (const auto &grp : groups) {
        sim::SweepBatch sb(pts, grp);
        sb.prepare();
        const uint64_t a0 =
            g_allocs.load(std::memory_order_relaxed);
        sb.drain();
        allocs += g_allocs.load(std::memory_order_relaxed) - a0;
        const auto outcomes = sb.finalize();
        for (const auto &o : outcomes) {
            if (!o.ok())
                fatal("alloc-probe lane failed: {}", o.error);
        }
        covered += grp.indices.size();
    }
    *lanes_out = covered;
    return allocs;
}

/**
 * Steady-state allocations in the batched replay loop, measured as
 * the allocation-count delta between two drains of the same grid
 * that differ only in measure length (2x vs 1x). One-time pool and
 * high-water-mark growth is identical in both and cancels; any
 * remainder is allocation proportional to replayed instructions.
 * Returns the lane count of one leg through @p lanes_out.
 */
uint64_t
probeBatchedReplayAllocs(const bench::Budget &budget,
                         unsigned lanes, size_t *lanes_out)
{
    size_t lanes_short = 0, lanes_long = 0;
    const uint64_t a_short = drainAllocs(budget, budget.measure,
                                         lanes, &lanes_short);
    const uint64_t a_long = drainAllocs(budget, budget.measure * 2,
                                        lanes, &lanes_long);
    *lanes_out = lanes_short;
    if (lanes_long != lanes_short)
        fatal("alloc-probe legs formed different batches");
    return a_long > a_short ? a_long - a_short : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    const unsigned jobs = opts.jobs ? opts.jobs : 1;
    const unsigned lanes = opts.batchLanes == 0
        ? sim::defaultBatchLanes()
        : opts.batchLanes;
    unsigned reps = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
            reps = static_cast<unsigned>(std::atoi(argv[++i]));
    }

    const auto grid = makeFig10Grid(opts.budget);
    std::printf("== Sweep-batch throughput (fig10 grid) ==\n");
    std::printf("%zu points, warmup %llu + measure %llu insts, "
                "--jobs %u, batch width %u, best of %u\n\n",
                grid.size(),
                static_cast<unsigned long long>(opts.budget.warmup),
                static_cast<unsigned long long>(opts.budget.measure),
                jobs, lanes, reps);

    // Untimed compile pass: touch every (benchmark, seed) once so
    // neither timed leg pays first-compile trace costs.
    {
        std::vector<sim::RunParams> warm;
        for (const auto &name : bench::intBenchmarks()) {
            for (uint64_t seed : bench::kSeeds) {
                sim::RunParams p;
                p.benchmark = name;
                p.seed = seed;
                p.warmupInsts = 500;
                p.measureInsts = 1000;
                warm.push_back(std::move(p));
            }
        }
        sim::SimulationRunner(jobs).run(warm);
    }

    // Interleaved A/B: serial leg then batched leg each rep, so
    // host noise (and any residual cache warmth drift) lands on
    // both sides evenly. Rep 0 also pins byte-identity.
    double serial_best = 0.0, batched_best = 0.0;
    bool identical = true;
    for (unsigned rep = 0; rep < reps; ++rep) {
        std::vector<sim::RunResult> sr, br;
        const double s = timedLeg(grid, jobs, 1,
                                  rep == 0 ? &sr : nullptr);
        const double b = timedLeg(grid, jobs, lanes,
                                  rep == 0 ? &br : nullptr);
        serial_best = std::max(serial_best, s);
        batched_best = std::max(batched_best, b);
        if (rep == 0) {
            for (size_t i = 0; i < sr.size(); ++i) {
                if (sr[i].report != br[i].report) {
                    identical = false;
                    std::printf("REPORT MISMATCH at point %zu "
                                "(%s)\n",
                                i,
                                sim::paramsSummary(grid[i]).c_str());
                }
            }
        }
        std::printf("rep %u: serial %.1f pts/s, batched %.1f "
                    "pts/s\n",
                    rep, s, b);
    }
    const double speedup =
        serial_best > 0 ? batched_best / serial_best : 0.0;

    std::printf("\n%-28s %14s\n", "configuration", "points/sec");
    std::printf("%-28s %14.1f\n", "serial (--batch 1)", serial_best);
    char label[48];
    std::snprintf(label, sizeof(label), "batched (--batch %u)",
                  lanes);
    std::printf("%-28s %14.1f\n", label, batched_best);
    std::printf("sweep-batch speedup: %.2fx over %zu points "
                "(target >= 1.15x: %s)\n",
                speedup, grid.size(),
                speedup >= 1.15 ? "met" : "NOT met");
    if (!identical) {
        std::printf("FAIL: batched reports differ from serial\n");
        return 1;
    }
    std::printf("batched reports byte-identical to serial\n\n");

    size_t probe_lanes = 0;
    const uint64_t replay_allocs =
        probeBatchedReplayAllocs(opts.budget, lanes, &probe_lanes);
    if (replay_allocs != 0) {
        std::printf("FAIL: batched replay allocated %llu times "
                    "across %zu lanes\n",
                    static_cast<unsigned long long>(replay_allocs),
                    probe_lanes);
        return 1;
    }
    std::printf("batched replay: zero steady-state allocations "
                "across %zu lanes\n",
                probe_lanes);

    const std::string json_path =
        opts.jsonPath.empty() ? "BENCH_batch.json" : opts.jsonPath;
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"points\": %zu,\n"
            "  \"reps\": %u,\n"
            "  \"jobs\": %u,\n"
            "  \"batchLanes\": %u,\n"
            "  \"warmupInsts\": %llu,\n"
            "  \"measureInsts\": %llu,\n"
            "  \"serialPointsPerSec\": %.1f,\n"
            "  \"batchedPointsPerSec\": %.1f,\n"
            "  \"speedup\": %.3f,\n"
            "  \"reportsIdentical\": %s,\n"
            "  \"batchedReplayAllocs\": %llu\n"
            "}\n",
            grid.size(), reps, jobs, lanes,
            static_cast<unsigned long long>(opts.budget.warmup),
            static_cast<unsigned long long>(opts.budget.measure),
            serial_best, batched_best, speedup,
            identical ? "true" : "false",
            static_cast<unsigned long long>(replay_allocs));
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
