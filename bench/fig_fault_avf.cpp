/**
 * @file
 * Soft-error vulnerability study: transient-fault injection
 * campaigns over Base vs. the PRI schemes (DESIGN.md §17).
 *
 * The paper's mechanism moves architectural state into structures
 * the base machine treats as transient: inlined immediates live in
 * the map table, early-freed registers re-enter circulation while
 * consumers may still name them, and checkpoint copies carry
 * immediates too. This harness measures what that does to soft-
 * error vulnerability: for every (scheme × fault site) cell it runs
 * N seeded single-strike injections and classifies each into
 * {masked, detected-by-golden, silent data corruption, hang,
 * crash}. The vulnerability column is the non-masked fraction —
 * the per-site AVF proxy.
 *
 * Everything is deterministic: injection specs are pure functions
 * of the campaign seed, and classification consumes only bit-exact
 * run artifacts, so the table and BENCH_faults.json are
 * byte-identical across --jobs, --batch, --journal resume, and a
 * warm pri_sweepd (--server).
 *
 * Extra options on top of the common set:
 *   --injections N   strikes per (scheme, site) cell (default 16;
 *                    --quick halves, --full doubles)
 *   --campaign-seed S  root of all injection draws (default 1)
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"
#include "faults/campaign_runner.hh"

namespace
{

constexpr pri::sim::Scheme kSchemes[] = {
    pri::sim::Scheme::Base,
    pri::sim::Scheme::EarlyRelease,
    pri::sim::Scheme::PriRefcountCkptcount,
    pri::sim::Scheme::PriRefcountLazy,
    pri::sim::Scheme::PriIdealCkptcount,
    pri::sim::Scheme::PriIdealLazy,
    pri::sim::Scheme::PriPlusEr,
};

double
vulnerability(const pri::faults::OutcomeCounts &c)
{
    const uint64_t total = c.total();
    if (total == 0)
        return 0.0;
    const uint64_t masked = c.n[static_cast<size_t>(
        pri::faults::FaultOutcome::Masked)];
    return static_cast<double>(total - masked) /
        static_cast<double>(total);
}

void
writeFaultsJson(const std::string &path,
                const pri::faults::CampaignSpec &spec,
                const pri::faults::CampaignTable &table)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(
        f,
        "{\n\"campaign\": {\"benchmark\": \"%s\", \"width\": %u, "
        "\"pregs\": %u, \"warmup\": %llu, \"measure\": %llu, "
        "\"injectionsPerCell\": %u, \"campaignSeed\": %llu, "
        "\"checkGolden\": %s},\n\"cells\": [\n",
        spec.benchmark.c_str(), spec.width, spec.physRegs,
        static_cast<unsigned long long>(spec.warmupInsts),
        static_cast<unsigned long long>(spec.measureInsts),
        spec.injections,
        static_cast<unsigned long long>(spec.campaignSeed),
        spec.checkGolden ? "true" : "false");
    bool first = true;
    for (size_t s = 0; s < table.schemes.size(); ++s) {
        for (size_t fi = 0; fi < table.sites.size(); ++fi) {
            const auto &c = table.cell(s, fi);
            std::fprintf(
                f,
                "%s  {\"scheme\": \"%s\", \"site\": \"%s\", "
                "\"masked\": %llu, \"golden\": %llu, "
                "\"sdc\": %llu, \"hang\": %llu, \"crash\": %llu, "
                "\"vulnerability\": %.6f}",
                first ? "" : ",\n",
                pri::sim::schemeName(table.schemes[s]),
                pri::faults::siteName(table.sites[fi]),
                static_cast<unsigned long long>(c.n[0]),
                static_cast<unsigned long long>(c.n[1]),
                static_cast<unsigned long long>(c.n[2]),
                static_cast<unsigned long long>(c.n[3]),
                static_cast<unsigned long long>(c.n[4]),
                vulnerability(c));
            first = false;
        }
    }
    std::fprintf(f, "\n]\n}\n");
    std::fclose(f);
    std::printf("wrote %zu campaign cells to %s\n",
                table.schemes.size() * table.sites.size(),
                path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pri;
    const auto opts = bench::parseOptions(argc, argv);

    faults::CampaignSpec spec;
    spec.schemes.assign(std::begin(kSchemes), std::end(kSchemes));
    // A tenth of the common budgets: a campaign multiplies every
    // cell by N injections, and single-strike classification needs
    // a window, not a long steady state.
    spec.warmupInsts = opts.budget.warmup / 10;
    spec.measureInsts = opts.budget.measure / 10;
    spec.injections = static_cast<unsigned>(
        opts.budget.measure / 5000); // 16 default, 4 quick, 50 full
    spec.timeoutMs = opts.timeoutMs;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--injections") == 0 &&
            i + 1 < argc) {
            spec.injections =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--campaign-seed") == 0 &&
                   i + 1 < argc) {
            spec.campaignSeed =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        }
    }
    if (spec.injections == 0)
        spec.injections = 1;

    faults::CampaignExec exec;
    exec.jobs = opts.jobs;
    exec.batchLanes = opts.batchLanes;
    exec.retry = sim::RetryPolicy{opts.retries + 1, opts.backoffMs};
    std::unique_ptr<sim::SweepJournal> journal;
    if (!opts.journalPath.empty()) {
        journal =
            std::make_unique<sim::SweepJournal>(opts.journalPath);
        exec.journal = journal.get();
    }
    std::unique_ptr<sweepd::SweepdClient> client;
    if (!opts.serverPath.empty()) {
        client = sweepd::SweepdClient::connect(opts.serverPath);
        if (client == nullptr) {
            warn("no pri_sweepd on '{}'; simulating in-process",
                 opts.serverPath);
        }
        exec.client = client.get();
    }

    std::printf("Soft-error vulnerability (single-strike "
                "campaigns): %s, width %u, %u PR, %u strikes "
                "per cell\n"
                "outcomes per cell: masked/golden/sdc/hang/crash\n\n",
                spec.benchmark.c_str(), spec.width, spec.physRegs,
                spec.injections);

    const auto table = faults::runCampaign(spec, exec);

    std::printf("%-26s", "scheme");
    for (const auto site : table.sites)
        std::printf("  %-14s", faults::siteName(site));
    std::printf("  %s\n", "vuln");
    for (size_t s = 0; s < table.schemes.size(); ++s) {
        std::printf("%-26s", sim::schemeName(table.schemes[s]));
        uint64_t masked = 0, total = 0;
        for (size_t fi = 0; fi < table.sites.size(); ++fi) {
            const auto &c = table.cell(s, fi);
            char buf[32];
            std::snprintf(buf, sizeof(buf),
                          "%llu/%llu/%llu/%llu/%llu",
                          static_cast<unsigned long long>(c.n[0]),
                          static_cast<unsigned long long>(c.n[1]),
                          static_cast<unsigned long long>(c.n[2]),
                          static_cast<unsigned long long>(c.n[3]),
                          static_cast<unsigned long long>(c.n[4]));
            std::printf("  %-14s", buf);
            masked += c.n[0];
            total += c.total();
        }
        std::printf("  %.3f\n",
                    total == 0
                        ? 0.0
                        : static_cast<double>(total - masked) /
                            static_cast<double>(total));
    }

    // Reference sanity line: every scheme's fault-free anchor ran.
    unsigned ref_fail = 0;
    for (const auto &r : table.refs)
        ref_fail += r.ok() ? 0 : 1;
    if (ref_fail != 0)
        std::printf("\nWARNING: %u reference run(s) failed\n",
                    ref_fail);

    writeFaultsJson(opts.jsonPath.empty() ? "BENCH_faults.json"
                                          : opts.jsonPath,
                    spec, table);
    return 0;
}
