/**
 * @file
 * Figure 13 (extension study): PRF read-port sensitivity. The
 * machine's register-read stage arbitrates a finite read-port
 * budget; PRI-inlined source operands issue straight off the map
 * and consume no ports, so PRI should hold its IPC as the budget
 * shrinks while the base machine stalls. For each port budget in
 * {unlimited, 12, 8, 6, 4, 2} the harness reports per-scheme
 * geomean IPC, the PRI/Base speedup, the IPC fraction retained vs
 * the unlimited array, and port-pressure metrics — plus the
 * analytical PrfModel's normalised access delay and area for each
 * budget, the silicon cost the smaller array buys back.
 */

#include <cstdio>

#include "bench_util.hh"
#include "rename/prf_model.hh"

namespace
{

/** 0 = unlimited; finite budgets down to the arbiter floor of 2. */
constexpr unsigned kPorts[] = {0, 12, 8, 6, 4, 2};

constexpr pri::sim::Scheme kSchemes[] = {
    pri::sim::Scheme::Base,
    pri::sim::Scheme::PriRefcountCkptcount,
};

std::vector<unsigned>
portsList()
{
    return std::vector<unsigned>(std::begin(kPorts),
                                 std::end(kPorts));
}

void
runWidth(unsigned width, const pri::bench::Options &opts)
{
    using namespace pri;
    const auto &budget = opts.budget;
    const auto benches = bench::intBenchmarks();

    std::printf("width %u  (geomean IPC over %zu workloads, "
                "64 PR)\n",
                width, benches.size());
    std::printf("%-10s", "ports");
    for (auto s : kSchemes)
        std::printf("  %10s", sim::schemeName(s));
    std::printf("  %9s  %9s  %9s\n", "PRI/Base", "retained",
                "stalls/k");

    double unlimited_pri = 0.0;
    for (unsigned ports : kPorts) {
        double ipcs[std::size(kSchemes)];
        double stalls_k = 0.0;
        for (size_t si = 0; si < std::size(kSchemes); ++si) {
            std::vector<double> per_bench;
            std::vector<double> per_stalls;
            for (const auto &name : benches) {
                const auto r = bench::runOne(name, width,
                                             kSchemes[si], budget,
                                             64, ports);
                per_bench.push_back(r.ipc);
                per_stalls.push_back(r.portStallsPerKInst);
            }
            ipcs[si] = bench::geomean(per_bench);
            if (kSchemes[si] != sim::Scheme::Base)
                stalls_k = bench::mean(per_stalls);
        }
        const double pri_ipc = ipcs[std::size(kSchemes) - 1];
        if (ports == 0)
            unlimited_pri = pri_ipc;
        if (ports == 0)
            std::printf("%-10s", "unlimited");
        else
            std::printf("%-10u", ports);
        for (double ipc : ipcs)
            std::printf("  %10.4f", ipc);
        std::printf("  %9.3f  %9.3f  %9.1f\n", pri_ipc / ipcs[0],
                    pri_ipc / unlimited_pri, stalls_k);
    }
    std::printf("\n");
}

void
printModelTable()
{
    using pri::rename::PrfGeometry;
    using pri::rename::PrfModel;
    std::printf("PrfModel: normalised access delay / area vs read "
                "ports (64x64 array, 4 write ports;\nbaseline "
                "8R4W = 1.0)\n");
    std::printf("%-8s  %8s  %8s\n", "ports", "delay", "area");
    for (unsigned ports : kPorts) {
        if (ports == 0)
            continue;
        PrfGeometry g;
        g.readPorts = ports;
        const auto e = PrfModel::estimate(g);
        std::printf("%-8u  %8.3f  %8.3f\n", ports, e.accessDelay,
                    e.area);
    }
    const PrfGeometry base;
    std::printf("read ports within the 8R delay budget: %u\n",
                PrfModel::readPortsWithinDelay(
                    PrfModel::rawDelay(base), base, 1, 16));
    std::printf("ports an 8-wide machine needs at 35%% inlining: "
                "%u (vs %u uninlined)\n\n",
                PrfModel::portsForIssueWidth(8, 0.35),
                PrfModel::portsForIssueWidth(8, 0.0));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = pri::bench::parseOptions(argc, argv);
    return pri::bench::runSweepGrid(
        pri::bench::SweepGrid{
            "=== Figure 13: PRF read-port sensitivity ===\n"
            "(inlined operands bypass the read ports, so PRI "
            "degrades more gracefully than\nBase as the budget "
            "shrinks)\n\n",
            pri::bench::intBenchmarks(),
            {4, 8},
            std::vector<pri::sim::Scheme>(std::begin(kSchemes),
                                          std::end(kSchemes)),
            {64},
            portsList()},
        opts, [&](unsigned w) {
            runWidth(w, opts);
            if (w == 8)
                printModelTable();
        });
}
