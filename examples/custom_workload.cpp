/**
 * @file
 * Example: define a custom benchmark profile from scratch and run it
 * through the whole stack — the path a downstream user takes to
 * evaluate PRI on their own workload characteristics.
 *
 * The profile below models a hypothetical "sensor-fusion" kernel:
 * very narrow integer values (sensor readings), a small working
 * set, predictable loops, and moderate FP with many zero samples.
 */

#include <cstdio>
#include <tuple>
#include <vector>

#include "core/core.hh"
#include "sim/runner.hh"
#include "workload/program.hh"

int
main()
{
    using namespace pri;

    // 1. Describe the workload.
    workload::BenchmarkProfile prof;
    prof.name = "sensor_fusion";
    prof.suite = workload::Suite::Fp;
    prof.fracLoad = 0.30;
    prof.fracStore = 0.08;
    prof.fracBranch = 0.10;
    prof.fracFpAdd = 0.18;
    prof.fracFpMult = 0.12;
    // 12-bit ADC readings: almost everything fits in 12 bits.
    prof.widthPoints = {{1, 0.10}, {8, 0.55}, {12, 0.92},
                        {16, 0.97}, {64, 1.0}};
    prof.fpFracZero = 0.65; // sparse sensor frames
    prof.branchEasyFrac = 0.95;
    prof.workingSetBytes = 64 * 1024;
    prof.randomAccessFrac = 0.03;
    prof.depLocality = 0.15;
    prof.paperIpc4 = prof.paperIpc8 = 1.0; // no paper reference

    // 2. Build the synthetic program and two machine configurations.
    workload::SyntheticProgram program(prof, 2026);

    auto run = [&](const rename::RenameConfig &rc) {
        StatGroup stats;
        core::OutOfOrderCore cpu(
            core::CoreConfig::fourWide(rc), program, stats);
        cpu.run(20000);             // warmup
        cpu.beginMeasurement();
        cpu.run(100000);            // measure
        cpu.checkInvariants();
        return std::tuple<double, double, double>(
            cpu.ipc(), cpu.avgIntOccupancy(), cpu.avgFpOccupancy());
    };

    // The two configurations are independent; fan them out across
    // the runner's thread pool (each run builds its own core).
    const rename::RenameConfig configs[] = {
        rename::RenameConfig::base(64, 7),
        rename::RenameConfig::priRefcountCkptcount(64, 7),
    };
    std::vector<std::tuple<double, double, double>> out(2);
    sim::SimulationRunner().forEach(
        2, [&](size_t i) { out[i] = run(configs[i]); });
    const auto [base_ipc, base_iocc, base_focc] = out[0];
    const auto [pri_ipc, pri_iocc, pri_focc] = out[1];

    // 3. Report.
    std::printf("custom workload '%s' on the 4-wide machine:\n\n",
                prof.name.c_str());
    std::printf("%-8s %8s %10s %10s\n", "scheme", "IPC", "occ(INT)",
                "occ(FP)");
    std::printf("%-8s %8.3f %10.1f %10.1f\n", "Base", base_ipc,
                base_iocc, base_focc);
    std::printf("%-8s %8.3f %10.1f %10.1f\n", "PRI", pri_ipc,
                pri_iocc, pri_focc);
    std::printf("\nPRI speedup: %.1f%%\n",
                100.0 * (pri_ipc / base_ipc - 1.0));
    std::printf("A workload with 12-bit sensor values is a "
                "near-ideal PRI candidate.\n");
    return 0;
}
