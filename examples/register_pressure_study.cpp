/**
 * @file
 * Example: a register-pressure study in the style of the paper's §5
 * analysis. For one benchmark, sweep the physical-register-file size
 * and show how Base and PRI respond — illustrating the paper's core
 * claim that PRI is worth a significant fraction of additional
 * physical registers.
 *
 * Usage: register_pressure_study [benchmark] [width]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulation.hh"

int
main(int argc, char **argv)
{
    using namespace pri;
    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const unsigned width =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

    std::printf("Register pressure study: %s, %u-wide\n\n",
                bench.c_str(), width);
    std::printf("%6s %12s %12s %14s %12s\n", "PR", "IPC(Base)",
                "IPC(PRI)", "PRI speedup", "occ(Base)");

    sim::RunParams p;
    p.benchmark = bench;
    p.width = width;

    double pri64 = 0.0;
    for (unsigned pr : {40u, 48u, 56u, 64u, 72u, 80u, 96u, 128u}) {
        p.physRegs = pr;
        p.scheme = sim::Scheme::Base;
        const auto base = sim::simulate(p);
        p.scheme = sim::Scheme::PriRefcountCkptcount;
        const auto pri = sim::simulate(p);
        if (pr == 64)
            pri64 = pri.ipc;
        std::printf("%6u %12.3f %12.3f %13.1f%% %12.1f\n", pr,
                    base.ipc, pri.ipc,
                    100.0 * (pri.ipc / base.ipc - 1.0),
                    base.avgIntOccupancy);
    }

    // How many base registers is PRI worth? Find the smallest Base
    // register file whose IPC matches PRI at 64.
    std::printf("\nPRI at 64 registers achieves IPC %.3f — "
                "equivalent to a larger conventional file:\n",
                pri64);
    p.scheme = sim::Scheme::Base;
    for (unsigned pr = 64; pr <= 160; pr += 8) {
        p.physRegs = pr;
        const auto base = sim::simulate(p);
        if (base.ipc >= pri64) {
            std::printf("  Base needs ~%u registers per class to "
                        "match (PRI saves ~%u)\n",
                        pr, pr - 64);
            return 0;
        }
    }
    std::printf("  Base does not match PRI even at 160 registers\n");
    return 0;
}
