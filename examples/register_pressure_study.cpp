/**
 * @file
 * Example: a register-pressure study in the style of the paper's §5
 * analysis. For one benchmark, sweep the physical-register-file size
 * and show how Base and PRI respond — illustrating the paper's core
 * claim that PRI is worth a significant fraction of additional
 * physical registers.
 *
 * Usage: register_pressure_study [benchmark] [width]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/simulation.hh"

int
main(int argc, char **argv)
{
    using namespace pri;
    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const unsigned width =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

    std::printf("Register pressure study: %s, %u-wide\n\n",
                bench.c_str(), width);
    std::printf("%6s %12s %12s %14s %12s\n", "PR", "IPC(Base)",
                "IPC(PRI)", "PRI speedup", "occ(Base)");

    sim::RunParams p;
    p.benchmark = bench;
    p.width = width;

    // Batch the whole (PR x {Base,PRI}) sweep through the runner.
    const unsigned sweep[] = {40, 48, 56, 64, 72, 80, 96, 128};
    const sim::SimulationRunner runner;
    std::vector<sim::RunParams> batch;
    for (unsigned pr : sweep) {
        p.physRegs = pr;
        p.scheme = sim::Scheme::Base;
        batch.push_back(p);
        p.scheme = sim::Scheme::PriRefcountCkptcount;
        batch.push_back(p);
    }
    const auto results = runner.run(batch);

    double pri64 = 0.0;
    for (size_t i = 0; i < std::size(sweep); ++i) {
        const auto &base = results[2 * i];
        const auto &pri = results[2 * i + 1];
        if (sweep[i] == 64)
            pri64 = pri.ipc;
        std::printf("%6u %12.3f %12.3f %13.1f%% %12.1f\n", sweep[i],
                    base.ipc, pri.ipc,
                    100.0 * (pri.ipc / base.ipc - 1.0),
                    base.avgIntOccupancy);
    }

    // How many base registers is PRI worth? Find the smallest Base
    // register file whose IPC matches PRI at 64. The candidates are
    // independent, so run the whole 64..160 search as one batch and
    // take the first match.
    std::printf("\nPRI at 64 registers achieves IPC %.3f — "
                "equivalent to a larger conventional file:\n",
                pri64);
    p.scheme = sim::Scheme::Base;
    std::vector<sim::RunParams> search;
    for (unsigned pr = 64; pr <= 160; pr += 8) {
        p.physRegs = pr;
        search.push_back(p);
    }
    const auto matches = runner.run(search);
    for (size_t i = 0; i < matches.size(); ++i) {
        if (matches[i].ipc >= pri64) {
            const unsigned pr = search[i].physRegs;
            std::printf("  Base needs ~%u registers per class to "
                        "match (PRI saves ~%u)\n",
                        pr, pr - 64);
            return 0;
        }
    }
    std::printf("  Base does not match PRI even at 160 registers\n");
    return 0;
}
