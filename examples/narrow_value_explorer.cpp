/**
 * @file
 * Example: explore the narrow-value opportunity of a workload
 * without running any timing simulation — the kind of study behind
 * the paper's Figure 2. Walks the functional instruction stream and
 * reports the operand-significance histogram, what fraction of
 * results each map-entry width would capture, and the FP triviality
 * breakdown.
 *
 * Usage: narrow_value_explorer [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/bitutils.hh"
#include "common/stats.hh"
#include "workload/walker.hh"

int
main(int argc, char **argv)
{
    using namespace pri;
    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const uint64_t insts = argc > 2
        ? static_cast<uint64_t>(std::atoll(argv[2]))
        : 200000;

    const auto &prof = workload::profileByName(bench);
    workload::SyntheticProgram prog(prof, 42);
    workload::Walker w(prog);

    StatDistribution widths(65);
    uint64_t fp = 0, fp_zero = 0;
    uint64_t ints = 0;
    for (uint64_t i = 0; i < insts; ++i) {
        auto wi = w.next();
        if (wi.isBranch())
            w.steer(wi, wi.taken, wi.actualTarget);
        if (!wi.hasDst())
            continue;
        if (wi.dst.cls == isa::RegClass::Int) {
            ++ints;
            widths.sample(significantBits(wi.resultValue));
        } else {
            ++fp;
            fp_zero += fpValueTrivial(wi.resultValue);
        }
    }

    std::printf("Narrow value explorer: %s (%llu insts)\n\n",
                bench.c_str(),
                static_cast<unsigned long long>(insts));

    std::printf("integer result significance histogram:\n");
    for (unsigned b = 1; b <= 64; ++b) {
        const uint64_t n = widths.bucket(b);
        if (n == 0)
            continue;
        const double frac = 100.0 * n / widths.count();
        if (frac < 0.5)
            continue;
        std::printf("  %2u bits %6.1f%% |", b, frac);
        for (int k = 0; k < static_cast<int>(frac); ++k)
            std::printf("#");
        std::printf("\n");
    }

    std::printf("\nmap-entry width -> fraction of integer results "
                "inlineable:\n");
    for (unsigned bits : {4u, 7u, 8u, 10u, 12u, 16u}) {
        std::printf("  %2u-bit entries: %5.1f%%%s\n", bits,
                    100.0 * widths.cdfAt(bits),
                    bits == 7 ? "   <- 4-wide machine model"
                              : (bits == 10
                                     ? "   <- 8-wide machine model"
                                     : ""));
    }

    if (fp > 0) {
        std::printf("\nfloating point: %.1f%% of results are "
                    "all-zeroes/ones (inlineable)\n",
                    100.0 * fp_zero / fp);
    }
    std::printf("\nintegers: %llu results, FP: %llu results\n",
                static_cast<unsigned long long>(ints),
                static_cast<unsigned long long>(fp));
    return 0;
}
