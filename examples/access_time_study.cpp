/**
 * @file
 * Example: translate PRI's IPC gains into register-file access-time
 * headroom, the framing of the paper's introduction ("this paper
 * advocates more efficient utilization of a fewer number of physical
 * registers in order to reduce the access time of the physical
 * register file").
 *
 * For a benchmark, find the smallest conventional register file that
 * matches PRI-at-64's IPC, then report what PRI at that smaller file
 * buys in modelled access delay, area, and energy.
 *
 * Usage: access_time_study [benchmark] [width]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rename/prf_model.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"

int
main(int argc, char **argv)
{
    using namespace pri;
    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const unsigned width =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

    sim::RunParams p;
    p.benchmark = bench;
    p.width = width;

    // 1. Reference points and the PRI downsizing sweep, dispatched
    //    as one batch through the parallel runner (the sweep points
    //    are independent; the first match is picked afterwards).
    std::vector<sim::RunParams> batch;
    p.physRegs = 64;
    p.scheme = sim::Scheme::Base;
    batch.push_back(p);
    p.scheme = sim::Scheme::PriRefcountCkptcount;
    batch.push_back(p);
    std::vector<unsigned> sweep;
    for (unsigned r = 40; r <= 64; r += 4) {
        p.physRegs = r;
        batch.push_back(p);
        sweep.push_back(r);
    }
    const auto results = sim::SimulationRunner().run(batch);
    const auto &base64 = results[0];
    const auto &pri64 = results[1];

    std::printf("Access-time study: %s, %u-wide\n\n", bench.c_str(),
                width);
    std::printf("Base @64 regs: IPC %.3f;  PRI @64 regs: IPC %.3f "
                "(%.1f%%)\n\n",
                base64.ipc, pri64.ipc,
                100.0 * (pri64.ipc / base64.ipc - 1.0));

    // 2. How small can a PRI register file be and still match the
    //    conventional 64-entry design?
    unsigned pri_match = 64;
    for (size_t i = 0; i < sweep.size(); ++i) {
        if (results[2 + i].ipc >= base64.ipc) {
            pri_match = sweep[i];
            break;
        }
    }

    const unsigned ports_r = 2 * width;
    const unsigned ports_w = width;
    rename::PrfGeometry conv{64, 64, ports_r, ports_w};
    rename::PrfGeometry pri_g{pri_match, 64, ports_r, ports_w};

    const double d_conv = rename::PrfModel::rawDelay(conv);
    const double d_pri = rename::PrfModel::rawDelay(pri_g);
    const double a_conv = rename::PrfModel::rawArea(conv);
    const double a_pri = rename::PrfModel::rawArea(pri_g);
    const double e_conv = rename::PrfModel::rawEnergy(conv);
    const double e_pri = rename::PrfModel::rawEnergy(pri_g);

    std::printf("PRI matches the conventional 64-entry file with "
                "~%u entries.\n\n",
                pri_match);
    std::printf("%-22s %10s %10s %10s\n", "register file",
                "delay", "area", "energy");
    std::printf("%-22s %10.3f %10.3f %10.3f\n", "conventional 64",
                d_conv, a_conv / a_conv, e_conv / e_conv);
    std::printf("%-22s %10.3f %10.3f %10.3f\n",
                ("PRI " + std::to_string(pri_match)).c_str(), d_pri,
                a_pri / a_conv, e_pri / e_conv);
    std::printf("\naccess delay saved: %.1f%%, area saved: %.1f%%, "
                "energy/access saved: %.1f%%\n",
                100.0 * (1.0 - d_pri / d_conv),
                100.0 * (1.0 - a_pri / a_conv),
                100.0 * (1.0 - e_pri / e_conv));
    std::printf("(first-order analytical model; see "
                "src/rename/prf_model.hh)\n");
    return 0;
}
