/**
 * @file
 * Quickstart: simulate one SPEC2000-like benchmark on the 4-wide
 * machine, with and without Physical Register Inlining, and print
 * the headline comparison.
 *
 * Usage: quickstart [benchmark] [width]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/simulation.hh"

int
main(int argc, char **argv)
{
    using namespace pri;

    const std::string benchmark = argc > 1 ? argv[1] : "gzip";
    const unsigned width =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

    std::printf("Physical Register Inlining quickstart\n");
    std::printf("benchmark=%s width=%u physRegs=64\n\n",
                benchmark.c_str(), width);

    sim::RunParams params;
    params.benchmark = benchmark;
    params.width = width;
    params.checkInvariants = true;

    // The three schemes are independent runs — dispatch them as one
    // batch through the parallel runner.
    std::vector<sim::RunParams> batch(3, params);
    batch[0].scheme = sim::Scheme::Base;
    batch[1].scheme = sim::Scheme::PriRefcountCkptcount;
    batch[2].scheme = sim::Scheme::InfinitePregs;
    const auto results = sim::SimulationRunner().run(batch);
    const auto &base = results[0];
    const auto &pri = results[1];
    const auto &inf = results[2];

    std::printf("%-26s %8s %10s %10s %9s\n", "scheme", "IPC",
                "occupancy", "phase3", "speedup");
    for (const auto *r : {&base, &pri, &inf}) {
        std::printf("%-26s %8.3f %10.1f %10.1f %8.2f%%\n",
                    r->scheme.c_str(), r->ipc, r->avgIntOccupancy,
                    r->lifeLastReadToRelease,
                    100.0 * (r->ipc / base.ipc - 1.0));
    }

    if (std::getenv("PRI_VERBOSE")) {
        std::printf("\n--- Base stats ---\n%s", base.report.c_str());
        std::printf("\n--- PRI stats ---\n%s", pri.report.c_str());
    }

    std::printf("\nphase3 = last-read -> release register lifetime "
                "(the phase PRI attacks)\n");
    std::printf("PRI inlined %.1f%% of results; %.1f early frees "
                "per 1k insts\n",
                100.0 * pri.inlinedFrac, pri.priEarlyFrees);
    return 0;
}
